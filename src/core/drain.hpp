// Drain-time estimation (§4.7).
//
// After reprogramming weights, old connections pinned by affinity keep
// loading a DIP, clouding the latency impact of the change. KnapsackLB
// measures how long that influence lasts with an extreme experiment:
//
//   1. drive one DIP's weight high until its latency is clearly elevated,
//   2. set the weight to 0 (T1) so no new connections arrive,
//   3. keep probing until latency returns to ~l0 (T2),
//   4. drain time = T2 - T1.
//
// The paper refreshes this every 120 minutes; the estimator is a one-shot
// procedure the operator (or an example binary) runs against a live pool.
// It only uses the weight interface and the latency store — no agents.
#pragma once

#include <functional>
#include <optional>

#include "lb/lb_controller.hpp"
#include "sim/simulation.hpp"
#include "store/latency_store.hpp"

namespace klb::core {

struct DrainEstimatorConfig {
  /// Weight applied during the loading phase.
  double high_weight = 0.5;
  /// Loading phase ends when latency >= this multiple of l0 (or after
  /// max_load_time).
  double elevated_factor = 2.0;
  util::SimTime max_load_time = util::SimTime::seconds(60);
  /// Latency counts as recovered at <= this multiple of l0.
  double recovered_factor = 1.15;
  util::SimTime poll_interval = util::SimTime::seconds(1);
  util::SimTime max_drain_time = util::SimTime::seconds(120);
};

class DrainEstimator {
 public:
  using DoneFn = std::function<void(std::optional<util::SimTime>)>;

  DrainEstimator(sim::Simulation& sim, net::IpAddr vip,
                 store::LatencyStore& store, lb::PoolProgrammer& lb,
                 DrainEstimatorConfig cfg = {})
      : sim_(sim), vip_(vip), store_(store), lb_(lb), cfg_(cfg) {}

  /// Measure the drain time of `dip` (programs are keyed by its address;
  /// `dip_index` is kept for call-site compatibility but unused). `l0_ms`
  /// is its unloaded latency. The pool's other weights are scaled to
  /// absorb 1 - w during the procedure. Calls `done` with the estimate
  /// (nullopt on timeout).
  void run(net::IpAddr dip, std::size_t dip_index, double l0_ms, DoneFn done);

  bool running() const { return running_; }

 private:
  void poll_loading();
  void poll_draining();
  void set_target_weight(double w);
  std::optional<double> fresh_latency() const;
  void finish(std::optional<util::SimTime> result);

  sim::Simulation& sim_;
  net::IpAddr vip_;
  store::LatencyStore& store_;
  lb::PoolProgrammer& lb_;
  DrainEstimatorConfig cfg_;

  bool running_ = false;
  net::IpAddr dip_;
  std::size_t dip_index_ = 0;
  double l0_ms_ = 0.0;
  DoneFn done_;
  util::SimTime phase_started_ = util::SimTime::zero();
  util::SimTime t1_ = util::SimTime::zero();
  util::SimTime last_seen_sample_ = util::SimTime::zero();
};

}  // namespace klb::core
