// Service-dynamics detection (§4.5).
//
// A weight-latency curve learned at one aggregate load goes stale when
// traffic, DIP capacity, or membership changes. Rather than re-exploring,
// KnapsackLB rescales curves:
//
//   per-DIP check     observed latency deviates from the curve's estimate
//                     by more than +-20% -> capacity change for that DIP;
//                     delta = w1 / w2 where w1 is the current weight and
//                     w2 the weight at which the old curve produced the
//                     observed latency; curve.rescale(delta).
//   cluster-wide      when >= traffic_fraction of DIPs deviate in the same
//                     direction simultaneously, it is a traffic change:
//                     all curves rescale by the median delta.
//
// Failures are detected upstream (KLM probes all failing) and handled by
// the controller; this class only classifies latency deviations.
#pragma once

#include <cstddef>
#include <vector>

#include "fit/wl_curve.hpp"

namespace klb::core {

struct DynamicsConfig {
  double capacity_deviation = 0.20;  // +-20% of the estimated latency
  /// Collective bar: a cluster-wide traffic shift moves every DIP a
  /// little, so the per-DIP deviation that counts toward the traffic vote
  /// is lower than the per-DIP capacity threshold.
  double traffic_deviation = 0.10;
  double traffic_fraction = 0.80;    // DIPs deviating together => traffic
  /// Per-event rescale clamps. Kept tight (the paper's own example is
  /// delta = 0.8): curves drift by repeated small corrections, not jumps,
  /// which keeps measurement noise near saturation from compounding. The
  /// upward clamp is tighter still: inflating a curve's capacity estimate
  /// on a noisy low sample immediately over-weights that DIP, while an
  /// unnecessary shrink only costs a little headroom.
  double min_delta = 0.5;
  double max_delta = 1.25;
  /// Rescale only after this many consecutive deviating assessments —
  /// debounces measurement noise near saturation, where a single KLM
  /// sample can swing past the +-20% band.
  int consecutive_samples = 2;
};

struct DipObservation {
  std::size_t dip = 0;
  double weight = 0.0;       // weight the DIP currently runs at
  double latency_ms = 0.0;   // latest measured latency at that weight
};

struct DynamicsAssessment {
  bool traffic_change = false;
  double traffic_delta = 1.0;  // median per-DIP delta when traffic_change
  /// DIPs whose individual deviation exceeds the threshold (only
  /// meaningful when !traffic_change).
  std::vector<std::size_t> capacity_changed;
  std::vector<double> capacity_delta;  // parallel to capacity_changed
};

class DynamicsDetector {
 public:
  explicit DynamicsDetector(DynamicsConfig cfg = {}) : cfg_(cfg) {}

  /// `curves[obs.dip]` must be fitted for every observation.
  DynamicsAssessment assess(
      const std::vector<const fit::WeightLatencyCurve*>& curves,
      const std::vector<DipObservation>& observations) const;

  /// The §4.5 delta for one DIP: w1/w2 with w2 = curve.weight_for(observed).
  /// Clamped to [min_delta, max_delta].
  double delta_for(const fit::WeightLatencyCurve& curve, double weight,
                   double observed_latency_ms) const;

  const DynamicsConfig& config() const { return cfg_; }

 private:
  DynamicsConfig cfg_;
};

}  // namespace klb::core
