#include "core/solver_pool.hpp"

#include <algorithm>

namespace klb::core {

SolverPool::SolverPool(int threads) {
  std::size_t n = threads > 0 ? static_cast<std::size_t>(threads)
                              : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

SolverPool::~SolverPool() {
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void SolverPool::submit(Job job) {
  {
    util::MutexLock lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void SolverPool::wait_idle() {
  util::MutexLock lock(mu_);
  // Explicit loop rather than a predicate lambda: the analysis treats
  // lambda bodies as separate functions, so guarded reads stay inline.
  while (!(queue_.empty() && in_flight_ == 0)) idle_cv_.wait(mu_);
}

std::uint64_t SolverPool::jobs_run() const {
  util::MutexLock lock(mu_);
  return jobs_run_;
}

void SolverPool::worker_loop() {
  for (;;) {
    Job job;
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      util::MutexLock lock(mu_);
      --in_flight_;
      ++jobs_run_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace klb::core
