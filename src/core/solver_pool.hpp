// A fixed-size worker pool for ILP recomputations (§5 at fleet scale).
//
// The paper runs one ILP per VIP on a shared controller VM; with hundreds
// of VIPs the wall-clock bottleneck is solver time, not the slot budget.
// SolverPool turns the coordinator's granted solves into jobs drained by N
// worker threads. Only the pure compute (Controller::solve_ilp) runs on
// workers; all state mutation (weight programming, counters, dirty flags)
// stays on the sim thread, applied back in VIP order so results are
// bit-identical to a serial run.
//
// The pool is deliberately minimal: submit closures, then wait_idle() to
// barrier a round. No futures, no shutdown races — the destructor joins
// after draining the queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace klb::core {

class SolverPool {
 public:
  using Job = std::function<void()>;

  /// `threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit SolverPool(int threads = 0);
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Enqueue a job. Jobs must not touch simulation state; they may only
  /// write to storage the submitter reads back after wait_idle().
  void submit(Job job) KLB_EXCLUDES(mu_);

  /// Block until every submitted job has finished executing (not merely
  /// been dequeued). Safe to call repeatedly; returns immediately when
  /// nothing is in flight.
  void wait_idle() KLB_EXCLUDES(mu_);

  std::size_t thread_count() const { return workers_.size(); }

  /// Jobs executed over the pool's lifetime (stats for benches).
  std::uint64_t jobs_run() const KLB_EXCLUDES(mu_);

 private:
  void worker_loop() KLB_EXCLUDES(mu_);

  mutable util::Mutex mu_{"klb.solver.queue"};
  util::CondVar work_cv_;   // workers wait for jobs
  util::CondVar idle_cv_;   // wait_idle waits for drain
  std::deque<Job> queue_ KLB_GUARDED_BY(mu_);
  std::size_t in_flight_ KLB_GUARDED_BY(mu_) = 0;  // dequeued, not finished
  std::uint64_t jobs_run_ KLB_GUARDED_BY(mu_) = 0;
  bool stopping_ KLB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace klb::core
