// Multi-VIP coordination (Fig. 6, §5).
//
// One KnapsackLB deployment serves many VIPs: a distinct ILP per VIP, all
// sharing one controller machine. §5: "For multiple VIPs, we prioritize
// ILP for VIPs with a change in the weight-latency curve for some DIP.
// The controller by default runs ILP for each VIP every 5 seconds."
//
// The coordinator owns one Controller per VIP and drives their rounds on
// a shared timer. Each round has three phases:
//
//   1. prepare (serial, sim thread): every controller consumes samples and
//      schedules measurements — Controller::tick_prepare(), cheap;
//   2. solve (parallel): VIPs that want a steady-state ILP recomputation
//      are granted solver slots — dirty-curve VIPs packed least-recently-
//      granted first, so no VIP starves — and the granted solves
//      (Controller::solve_ilp, pure compute) run on the SolverPool's
//      worker threads;
//   3. apply (serial, sim thread): outcomes are applied in ascending VIP
//      order (Controller::apply_ilp), so weights are bit-identical to a
//      serial run regardless of worker scheduling.
//
// The grant budget is `max_ilp_per_round` per worker thread: the slot
// budget models one solver core's round capacity, and adding workers
// scales the round's solve throughput accordingly.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "core/solver_pool.hpp"

namespace klb::core {

struct MultiVipConfig {
  util::SimTime round_interval = util::SimTime::seconds(10);
  /// ILP solve slots per round *per solver thread* (the solver budget of
  /// one controller core). 0 = unlimited.
  int max_ilp_per_round = 4;
  /// Solver pool width. 0 = hardware_concurrency; 1 = serial (solves run
  /// inline on the sim thread, no pool is created).
  int solver_threads = 1;
  ControllerConfig controller;  // template for every per-VIP controller
};

class MultiVipCoordinator {
 public:
  MultiVipCoordinator(sim::Simulation& sim, MultiVipConfig cfg = {})
      : sim_(sim), cfg_(cfg),
        timer_(sim, cfg.round_interval, [this] { tick(); }) {
    if (cfg_.solver_threads != 1)
      pool_ = std::make_unique<SolverPool>(cfg_.solver_threads);
  }

  /// Register a VIP with its DIPs, store, and dataplane programmer.
  /// Returns the VIP's index. Must be called before start().
  std::size_t add_vip(net::IpAddr vip, std::vector<net::IpAddr> dips,
                      store::LatencyStore& store, lb::PoolProgrammer& lb) {
    auto cc = cfg_.controller;
    cc.round_interval = cfg_.round_interval;
    vips_.push_back(std::make_unique<Controller>(sim_, vip, std::move(dips),
                                                 store, lb, cc));
    last_ilp_grant_.push_back(0);
    return vips_.size() - 1;
  }

  void start() {
    for (auto& v : vips_) v->start_managed();
    timer_.start();
  }
  void stop() { timer_.stop(); }

  /// One coordinated round (also callable directly from benches).
  void tick() {
    ++rounds_;

    // Phase 1 (serial): samples, lifecycle, measurement scheduling.
    std::vector<char> wants(vips_.size(), 0);
    for (std::size_t i = 0; i < vips_.size(); ++i)
      wants[i] = vips_[i]->tick_prepare() ? 1 : 0;

    // Grant solver slots to the VIPs that want a recomputation,
    // least-recently-granted first (FIFO among equally dirty VIPs, so no
    // VIP starves behind a persistently dirty neighbour).
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < vips_.size(); ++i)
      if (wants[i]) order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return last_ilp_grant_[a] < last_ilp_grant_[b];
                     });
    int budget = slot_budget();
    std::vector<char> granted(vips_.size(), 0);
    for (const auto i : order) {
      if (budget == 0) break;  // negative = unlimited
      granted[i] = 1;
      last_ilp_grant_[i] = rounds_;
      ++ilp_grants_;
      if (budget > 0) --budget;
    }

    // Phase 2: granted solves — on the pool when one exists, else inline.
    std::vector<Controller::IlpSolveOutcome> outcomes(vips_.size());
    if (pool_) {
      for (std::size_t i = 0; i < vips_.size(); ++i) {
        if (!granted[i]) continue;
        auto* vip = vips_[i].get();
        auto* slot = &outcomes[i];
        pool_->submit([vip, slot] { *slot = vip->solve_ilp(); });
      }
      pool_->wait_idle();
    } else {
      for (std::size_t i = 0; i < vips_.size(); ++i)
        if (granted[i]) outcomes[i] = vips_[i]->solve_ilp();
    }

    // Phase 3 (serial): apply in VIP order — deterministic regardless of
    // which worker finished first.
    for (std::size_t i = 0; i < vips_.size(); ++i)
      if (granted[i]) vips_[i]->apply_ilp(outcomes[i]);
  }

  std::size_t vip_count() const { return vips_.size(); }
  Controller& controller(std::size_t i) { return *vips_[i]; }
  const Controller& controller(std::size_t i) const { return *vips_[i]; }
  std::uint64_t rounds_run() const { return rounds_; }
  /// Solver slots granted over the coordinator's lifetime.
  std::uint64_t ilp_grants() const { return ilp_grants_; }
  std::size_t solver_threads() const { return pool_ ? pool_->thread_count() : 1; }
  /// Effective ILP grant budget per round (negative = unlimited).
  int slot_budget() const {
    if (cfg_.max_ilp_per_round <= 0) return -1;
    return cfg_.max_ilp_per_round * static_cast<int>(solver_threads());
  }

  bool all_ready() const {
    for (const auto& v : vips_)
      if (!v->all_ready()) return false;
    return !vips_.empty();
  }

 private:
  sim::Simulation& sim_;
  MultiVipConfig cfg_;
  std::vector<std::unique_ptr<Controller>> vips_;
  std::vector<std::uint64_t> last_ilp_grant_;
  std::unique_ptr<SolverPool> pool_;
  sim::PeriodicTimer timer_;
  std::uint64_t rounds_ = 0;
  std::uint64_t ilp_grants_ = 0;
};

}  // namespace klb::core
