// Multi-VIP coordination (Fig. 6, §5).
//
// One KnapsackLB deployment serves many VIPs: a distinct ILP per VIP, all
// sharing one controller machine. §5: "For multiple VIPs, we prioritize
// ILP for VIPs with a change in the weight-latency curve for some DIP.
// The controller by default runs ILP for each VIP every 5 seconds."
//
// The coordinator owns one Controller per VIP and drives their rounds on
// a shared timer. Every round each controller processes samples and
// measurement scheduling (cheap); steady-state ILP recomputation — the
// expensive part — is granted to at most `max_ilp_per_round` VIPs,
// dirty-curves first (FIFO among equally dirty, so no VIP starves).
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/controller.hpp"

namespace klb::core {

struct MultiVipConfig {
  util::SimTime round_interval = util::SimTime::seconds(10);
  /// ILP solve slots per round across all VIPs (the solver budget of one
  /// controller VM). 0 = unlimited.
  int max_ilp_per_round = 4;
  ControllerConfig controller;  // template for every per-VIP controller
};

class MultiVipCoordinator {
 public:
  MultiVipCoordinator(sim::Simulation& sim, MultiVipConfig cfg = {})
      : sim_(sim), cfg_(cfg),
        timer_(sim, cfg.round_interval, [this] { tick(); }) {}

  /// Register a VIP with its DIPs, store, and weight interface. Returns
  /// the VIP's index. Must be called before start().
  std::size_t add_vip(net::IpAddr vip, std::vector<net::IpAddr> dips,
                      store::LatencyStore& store, lb::WeightInterface& lb) {
    auto cc = cfg_.controller;
    cc.round_interval = cfg_.round_interval;
    vips_.push_back(std::make_unique<Controller>(sim_, vip, std::move(dips),
                                                 store, lb, cc));
    last_ilp_grant_.push_back(0);
    return vips_.size() - 1;
  }

  void start() {
    for (auto& v : vips_) v->start_managed();
    timer_.start();
  }
  void stop() { timer_.stop(); }

  /// One coordinated round (also callable directly from benches).
  void tick() {
    ++rounds_;
    // Grant ILP slots: dirty VIPs first, least-recently-granted first.
    std::vector<std::size_t> order(vips_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const bool da = vips_[a]->ilp_dirty();
                       const bool db = vips_[b]->ilp_dirty();
                       if (da != db) return da > db;
                       return last_ilp_grant_[a] < last_ilp_grant_[b];
                     });
    int slots = cfg_.max_ilp_per_round > 0 ? cfg_.max_ilp_per_round
                                           : static_cast<int>(vips_.size());
    std::vector<bool> allow(vips_.size(), false);
    for (const auto i : order) {
      if (slots <= 0) break;
      allow[i] = true;
      last_ilp_grant_[i] = rounds_;
      --slots;
    }
    for (std::size_t i = 0; i < vips_.size(); ++i)
      vips_[i]->tick(allow[i]);
  }

  std::size_t vip_count() const { return vips_.size(); }
  Controller& controller(std::size_t i) { return *vips_[i]; }
  const Controller& controller(std::size_t i) const { return *vips_[i]; }
  std::uint64_t rounds_run() const { return rounds_; }

  bool all_ready() const {
    for (const auto& v : vips_)
      if (!v->all_ready()) return false;
    return !vips_.empty();
  }

 private:
  sim::Simulation& sim_;
  MultiVipConfig cfg_;
  std::vector<std::unique_ptr<Controller>> vips_;
  std::vector<std::uint64_t> last_ilp_grant_;
  sim::PeriodicTimer timer_;
  std::uint64_t rounds_ = 0;
};

}  // namespace klb::core
