// Measurement scheduling (§4.6).
//
// Explorers ask for specific weights, but per-VIP weights must sum to 1,
// so measurement requests are packed into rounds. Requests carry one of
// three priority classes — (0) overloaded DIPs, (1) everything else,
// (2) refresh traffic — FIFO within a class. A greedy pass admits requests
// in priority order while the running sum fits; the residual budget
// 1 - ws is then assigned by the Fig. 7 ILP over the already-explored
// (Ready) DIPs (constraint (b) modified to 1 - ws), falling back to an
// equal split over the leftover DIPs when the ILP is unsatisfiable, and
// finally to a proportional bump of the admitted requests when no DIP is
// left to absorb the residual.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ilp_weights.hpp"

namespace klb::core {

enum class MeasurePriority : int {
  kOverloaded = 0,
  kNormal = 1,
  kRefresh = 2,
};

struct MeasurementRequest {
  std::size_t dip = 0;
  double weight = 0.0;  // the weight the explorer wants measured
  MeasurePriority priority = MeasurePriority::kNormal;
  std::uint64_t seq = 0;  // FIFO order within the class
};

struct ScheduleResult {
  /// Final per-DIP weights, summing to 1 over alive DIPs (grid-exact).
  std::vector<double> weights;
  /// True where the request was honoured at its exact weight (that DIP's
  /// next sample counts as its exploration measurement).
  std::vector<bool> measured;
  double scheduled_weight = 0.0;  // ws: weight consumed by measurements
  bool residual_ilp_used = false;
  bool residual_equal_split = false;
  bool residual_bumped = false;  // no free DIPs: admitted requests scaled up
};

class MeasurementScheduler {
 public:
  explicit MeasurementScheduler(IlpWeights solver) : solver_(std::move(solver)) {}

  /// `curves[i]` non-null marks DIP i as Ready (usable by the residual
  /// ILP); `alive[i]` false excludes the DIP entirely (weight 0).
  /// Requests for dead DIPs are ignored.
  ScheduleResult schedule(
      const std::vector<MeasurementRequest>& requests,
      const std::vector<const fit::WeightLatencyCurve*>& curves,
      const std::vector<bool>& alive) const;

 private:
  IlpWeights solver_;
};

}  // namespace klb::core
