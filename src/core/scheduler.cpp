#include "core/scheduler.hpp"

#include <algorithm>

#include "util/weight.hpp"

namespace klb::core {

ScheduleResult MeasurementScheduler::schedule(
    const std::vector<MeasurementRequest>& requests,
    const std::vector<const fit::WeightLatencyCurve*>& curves,
    const std::vector<bool>& alive) const {
  const std::size_t n = curves.size();
  ScheduleResult out;
  out.weights.assign(n, 0.0);
  out.measured.assign(n, false);

  // Priority order: class, then FIFO sequence.
  std::vector<MeasurementRequest> ordered;
  for (const auto& r : requests)
    if (r.dip < n && alive[r.dip]) ordered.push_back(r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const MeasurementRequest& a, const MeasurementRequest& b) {
                     if (a.priority != b.priority) return a.priority < b.priority;
                     return a.seq < b.seq;
                   });

  // Greedy admission: hop over requests that do not fit, keep scanning.
  std::int64_t budget = util::kWeightScale;
  std::vector<std::size_t> admitted;
  for (const auto& r : ordered) {
    if (out.measured[r.dip]) continue;  // one measurement per DIP per round
    const auto units = util::weight_to_units(r.weight);
    if (units > budget) continue;
    out.weights[r.dip] = r.weight;
    out.measured[r.dip] = true;
    admitted.push_back(r.dip);
    budget -= units;
  }
  out.scheduled_weight = util::units_to_weight(util::kWeightScale - budget);

  if (budget <= 0) return out;
  const double residual = util::units_to_weight(budget);

  // Residual via the ILP over Ready DIPs that are not being measured.
  std::vector<std::size_t> ilp_dips;
  std::vector<const fit::WeightLatencyCurve*> ilp_curves;
  for (std::size_t d = 0; d < n; ++d) {
    if (!alive[d] || out.measured[d]) continue;
    if (curves[d] != nullptr && curves[d]->fitted()) {
      ilp_dips.push_back(d);
      ilp_curves.push_back(curves[d]);
    }
  }
  if (!ilp_curves.empty()) {
    const auto ilp = solver_.compute(ilp_curves, residual);
    if (ilp.feasible) {
      out.residual_ilp_used = true;
      for (std::size_t k = 0; k < ilp_dips.size(); ++k)
        out.weights[ilp_dips[k]] = ilp.weights[k];
      return out;
    }
  }

  // Equal split over the remaining (unmeasured, alive) DIPs.
  std::vector<std::size_t> leftover;
  for (std::size_t d = 0; d < n; ++d)
    if (alive[d] && !out.measured[d]) leftover.push_back(d);
  if (!leftover.empty()) {
    out.residual_equal_split = true;
    const double share = residual / static_cast<double>(leftover.size());
    for (const auto d : leftover) out.weights[d] = share;
    return out;
  }

  // Everyone is being measured and the requests undershoot 1: bump the
  // admitted requests proportionally (their measurements no longer match
  // the requested weight, so clear the flags — the explorers will re-ask).
  if (!admitted.empty() && out.scheduled_weight > 0.0) {
    out.residual_bumped = true;
    // Keep the highest-priority admitted requests exact: absorb the
    // residual into the lowest-priority admitted DIPs first.
    double needed = residual;
    for (auto it = admitted.rbegin(); it != admitted.rend() && needed > 1e-9;
         ++it) {
      const double grow = std::min(needed, 1.0 - out.weights[*it]);
      if (grow <= 0.0) continue;
      out.weights[*it] += grow;
      out.measured[*it] = false;  // no longer at the requested weight
      needed -= grow;
    }
  }
  return out;
}

}  // namespace klb::core
