#include "core/explorer.hpp"

#include <algorithm>
#include <cmath>

namespace klb::core {

void WeightExplorer::begin(double initial_weight) {
  wnow_ = std::clamp(initial_weight, 0.0, 1.0);
  wprev_ = 0.0;
  wmax_ = 0.0;
  started_ = true;
  done_ = false;
  iteration_ = 0;
  history_.clear();
  trace_.clear();
  trace_.push_back(wnow_);
}

void WeightExplorer::restart() {
  const double l0 = l0_ms_;
  *this = WeightExplorer(cfg_);
  l0_ms_ = l0;
}

bool WeightExplorer::observe(double latency_ms, bool packet_drop) {
  if (!started_ || done_) return false;
  ++iteration_;

  // The paper treats latency >= 5*l0 as a drop even without loss (§4.3):
  // latencies in that regime mean ~100% CPU, and probing higher weights
  // would only shed real traffic.
  const bool drop =
      packet_drop ||
      (has_l0() && latency_ms >= cfg_.pseudo_drop_factor * l0_ms_);
  history_.push_back(fit::CurvePoint{wnow_, latency_ms, drop});

  double wnext;
  if (!drop) {
    wmax_ = std::max(wmax_, wnow_);
    // Run phase. The l0/lw ratio throttles growth near capacity; cap at 1
    // so a noisy lw < l0 cannot produce more than a doubling.
    const double ratio =
        has_l0() ? std::min(1.0, l0_ms_ / std::max(latency_ms, 1e-9)) : 1.0;
    wnext = wnow_ + wnow_ * cfg_.alpha * ratio;
    wnext = std::min(wnext, 1.0);
  } else {
    // Backtrack toward the highest weight seen without drops. (The paper
    // writes (wnow + wprev)/2; anchoring on wmax keeps the bisection
    // moving down even after consecutive drops.)
    wnext = (wnow_ + wmax_) / 2.0;
  }

  const double d = cfg_.done_fraction * std::max(wnow_, 1e-6);
  if (std::fabs(wnext - wnow_) <= d || iteration_ >= cfg_.max_iterations) {
    done_ = true;
    return true;
  }

  wprev_ = wnow_;
  wnow_ = wnext;
  trace_.push_back(wnow_);
  return false;
}

}  // namespace klb::core
