// Deployment-overhead model (§6.7, Table 8).
//
// Closed-form reproduction of the paper's cost accounting for a 60K-DIP
// datacenter: KLM instances are sized by probe throughput but also bounded
// one-per-VNET; the controller is sized by regression time per DIP and ILP
// time per VIP against the 5-second loop; Redis is priced flat. Constants
// default to the paper's published numbers so the bench regenerates the
// 0.71% / 0.83% / 0.32% etc. figures.
#pragma once

#include <cstdint>
#include <vector>

namespace klb::core {

/// One row of Table 8: `vips` VIPs, each fronting `dips_per_vip` DIPs.
struct VipClass {
  int dips_per_vip = 0;
  int vips = 0;
};

/// The paper's Table 8 workload (60K DIPs total).
std::vector<VipClass> table8_workload();

struct OverheadParams {
  // KLM (§6.7): measured probe throughput and per-VM capacity.
  double klm_probe_rps = 4'500.0;      // DS1v2 measured
  double probes_per_dip_per_round = 100.0;
  double round_seconds = 5.0;
  int dips_per_klm_cap = 225;          // probe-throughput bound
  int klm_cores = 1;                   // DS1 v2
  double klm_vm_monthly_usd = 41.0;    // DS1
  // DIPs.
  int dip_cores = 8;                   // D8a
  double dip_vm_monthly_usd = 280.0;   // D8a
  // Controller.
  double regression_ms_per_dip = 1.0;
  double ilp_seconds_for_workload = 851.0;  // paper's measured total
  int controller_cores = 8;
  double controller_vm_monthly_usd = 280.0;
  double ilp_period_seconds = 5.0;
  // Latency store.
  double redis_daily_usd = 6.0;
  // Spot discount available for KLM (paper: 2.6x).
  double spot_discount = 2.6;
};

struct OverheadReport {
  std::int64_t total_dips = 0;
  std::int64_t total_vips = 0;
  std::int64_t klm_instances = 0;       // one per VNET, capacity-capped
  std::int64_t klm_cores = 0;
  double klm_core_overhead = 0.0;       // vs. DIP cores (fraction)
  double klm_cost_overhead = 0.0;       // vs. DIP spend (fraction)
  double klm_cost_overhead_spot = 0.0;
  std::int64_t regression_cores = 0;
  double regression_core_overhead = 0.0;
  std::int64_t controller_vms = 0;      // to fit ILP in the 5 s period
  double controller_core_overhead = 0.0;
  double redis_monthly_usd = 0.0;
  double redis_cost_overhead = 0.0;
};

OverheadReport compute_overheads(const std::vector<VipClass>& workload,
                                 const OverheadParams& params = {});

}  // namespace klb::core
