#include "net/resp.hpp"

#include <charconv>

namespace klb::net {

namespace {

constexpr const char* kCrlf = "\r\n";

void encode_into(const RespValue& v, std::string& out) {
  switch (v.type) {
    case RespValue::Type::kSimpleString:
      out += '+';
      out += v.str;
      out += kCrlf;
      break;
    case RespValue::Type::kError:
      out += '-';
      out += v.str;
      out += kCrlf;
      break;
    case RespValue::Type::kInteger:
      out += ':';
      out += std::to_string(v.integer);
      out += kCrlf;
      break;
    case RespValue::Type::kBulkString:
      out += '$';
      out += std::to_string(v.str.size());
      out += kCrlf;
      out += v.str;
      out += kCrlf;
      break;
    case RespValue::Type::kNull:
      out += "$-1";
      out += kCrlf;
      break;
    case RespValue::Type::kArray:
      out += '*';
      out += std::to_string(v.array.size());
      out += kCrlf;
      for (const auto& item : v.array) encode_into(item, out);
      break;
  }
}

// Reads "<int>\r\n" starting at pos; advances pos past the CRLF.
std::optional<std::int64_t> read_int_line(const std::string& wire,
                                          std::size_t& pos) {
  const auto eol = wire.find(kCrlf, pos);
  if (eol == std::string::npos) return std::nullopt;
  std::int64_t v = 0;
  const char* begin = wire.data() + pos;
  const char* end = wire.data() + eol;
  const auto [p, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || p != end) return std::nullopt;
  pos = eol + 2;
  return v;
}

std::optional<RespValue> decode_at(const std::string& wire, std::size_t& pos);

std::optional<RespValue> decode_line_payload(const std::string& wire,
                                             std::size_t& pos,
                                             RespValue::Type type) {
  const auto eol = wire.find(kCrlf, pos);
  if (eol == std::string::npos) return std::nullopt;
  RespValue v;
  v.type = type;
  v.str = wire.substr(pos, eol - pos);
  pos = eol + 2;
  return v;
}

std::optional<RespValue> decode_at(const std::string& wire, std::size_t& pos) {
  if (pos >= wire.size()) return std::nullopt;
  const char tag = wire[pos++];
  switch (tag) {
    case '+':
      return decode_line_payload(wire, pos, RespValue::Type::kSimpleString);
    case '-':
      return decode_line_payload(wire, pos, RespValue::Type::kError);
    case ':': {
      const auto v = read_int_line(wire, pos);
      if (!v) return std::nullopt;
      return RespValue::integer_of(*v);
    }
    case '$': {
      const auto len = read_int_line(wire, pos);
      if (!len) return std::nullopt;
      if (*len < 0) return RespValue::null();
      const auto n = static_cast<std::size_t>(*len);
      if (pos + n + 2 > wire.size()) return std::nullopt;
      if (wire[pos + n] != '\r' || wire[pos + n + 1] != '\n')
        return std::nullopt;
      RespValue v = RespValue::bulk(wire.substr(pos, n));
      pos += n + 2;
      return v;
    }
    case '*': {
      const auto count = read_int_line(wire, pos);
      if (!count) return std::nullopt;
      if (*count < 0) return RespValue::null();
      RespArray items;
      items.reserve(static_cast<std::size_t>(*count));
      for (std::int64_t i = 0; i < *count; ++i) {
        auto item = decode_at(wire, pos);
        if (!item) return std::nullopt;
        items.push_back(std::move(*item));
      }
      return RespValue::array_of(std::move(items));
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::string resp_encode(const RespValue& v) {
  std::string out;
  encode_into(v, out);
  return out;
}

std::string resp_encode_command(const std::vector<std::string>& parts) {
  RespArray items;
  items.reserve(parts.size());
  for (const auto& p : parts) items.push_back(RespValue::bulk(p));
  return resp_encode(RespValue::array_of(std::move(items)));
}

std::optional<RespDecodeResult> resp_decode(const std::string& wire) {
  std::size_t pos = 0;
  auto v = decode_at(wire, pos);
  if (!v) return std::nullopt;
  return RespDecodeResult{std::move(*v), pos};
}

}  // namespace klb::net
