// Minimal HTTP/1.1 message model and wire codec.
//
// The simulated web servers, the KLM prober, and the clients exchange
// HttpRequest/HttpResponse values; the codec serializes them to real
// HTTP/1.1 byte strings. Serializing is not strictly necessary for the
// simulation, but keeping a real wire format (a) sizes messages for the
// fabric's bandwidth model and (b) keeps the codec testable against
// hand-written HTTP.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace klb::net {

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::map<std::string, std::string> headers;
  std::string body;

  std::string serialize() const;
  /// Parse a complete request from `wire`. Returns nullopt on malformed
  /// input or when the Content-Length promises more body than provided.
  static std::optional<HttpRequest> parse(const std::string& wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  std::string serialize() const;
  static std::optional<HttpResponse> parse(const std::string& wire);
};

/// Canonical reason phrase for the status codes the simulator emits.
std::string default_reason(int status);

}  // namespace klb::net
