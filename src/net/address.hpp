// IPv4 addresses and endpoints for the simulated network.
//
// The simulator identifies nodes by IPv4 address (VIPs and DIPs in the
// paper's terminology are both plain IpAddr values); Endpoint adds a port.
// Parsing/formatting round-trips exactly, which the tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace klb::net {

class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t be) : addr_(be) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  static std::optional<IpAddr> parse(const std::string& s);

  constexpr std::uint32_t value() const { return addr_; }
  std::string str() const;

  constexpr bool operator==(const IpAddr& o) const { return addr_ == o.addr_; }
  constexpr bool operator!=(const IpAddr& o) const { return addr_ != o.addr_; }
  constexpr bool operator<(const IpAddr& o) const { return addr_ < o.addr_; }
  constexpr bool operator<=(const IpAddr& o) const { return addr_ <= o.addr_; }
  constexpr bool operator>(const IpAddr& o) const { return addr_ > o.addr_; }
  constexpr bool operator>=(const IpAddr& o) const { return addr_ >= o.addr_; }

  /// Successor address (used to mint DIP addresses from a base).
  constexpr IpAddr next(std::uint32_t n = 1) const { return IpAddr(addr_ + n); }

 private:
  std::uint32_t addr_ = 0;
};

struct Endpoint {
  IpAddr ip;
  std::uint16_t port = 0;

  std::string str() const { return ip.str() + ":" + std::to_string(port); }
  bool operator==(const Endpoint& o) const {
    return ip == o.ip && port == o.port;
  }
  bool operator!=(const Endpoint& o) const { return !(*this == o); }
  bool operator<(const Endpoint& o) const {
    return ip != o.ip ? ip < o.ip : port < o.port;
  }
};

}  // namespace klb::net

template <>
struct std::hash<klb::net::IpAddr> {
  std::size_t operator()(const klb::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<klb::net::Endpoint> {
  std::size_t operator()(const klb::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.ip.value()} << 16) | e.port);
  }
};
