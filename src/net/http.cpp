#include "net/http.hpp"

#include <charconv>

namespace klb::net {

namespace {

constexpr const char* kCrlf = "\r\n";

void serialize_headers(const std::map<std::string, std::string>& headers,
                       const std::string& body, std::string& out) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += kCrlf;
    if (k == "Content-Length") have_length = true;
  }
  if (!have_length) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += kCrlf;
  }
  out += kCrlf;
  out += body;
}

struct HeaderBlock {
  std::map<std::string, std::string> headers;
  std::string body;
};

// Parses headers starting after the first line; `pos` points past the
// first CRLF. Returns nullopt on malformed headers or truncated body.
std::optional<HeaderBlock> parse_headers(const std::string& wire,
                                         std::size_t pos) {
  HeaderBlock out;
  while (true) {
    const auto eol = wire.find(kCrlf, pos);
    if (eol == std::string::npos) return std::nullopt;
    if (eol == pos) {  // blank line: end of headers
      pos += 2;
      break;
    }
    const auto colon = wire.find(':', pos);
    if (colon == std::string::npos || colon > eol) return std::nullopt;
    std::string key = wire.substr(pos, colon - pos);
    std::size_t vbegin = colon + 1;
    while (vbegin < eol && wire[vbegin] == ' ') ++vbegin;
    out.headers[key] = wire.substr(vbegin, eol - vbegin);
    pos = eol + 2;
  }
  std::size_t length = wire.size() - pos;
  if (const auto it = out.headers.find("Content-Length");
      it != out.headers.end()) {
    std::size_t want = 0;
    const auto [p, ec] =
        std::from_chars(it->second.data(), it->second.data() + it->second.size(), want);
    if (ec != std::errc{} || p != it->second.data() + it->second.size())
      return std::nullopt;
    if (want > length) return std::nullopt;  // truncated body
    length = want;
  }
  out.body = wire.substr(pos, length);
  return out;
}

}  // namespace

std::string default_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1";
  out += kCrlf;
  serialize_headers(headers, body, out);
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(const std::string& wire) {
  const auto eol = wire.find(kCrlf);
  if (eol == std::string::npos) return std::nullopt;
  const std::string line = wire.substr(0, eol);
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return std::nullopt;
  if (line.substr(sp2 + 1) != "HTTP/1.1" && line.substr(sp2 + 1) != "HTTP/1.0")
    return std::nullopt;

  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method.empty() || req.target.empty()) return std::nullopt;

  auto block = parse_headers(wire, eol + 2);
  if (!block) return std::nullopt;
  req.headers = std::move(block->headers);
  req.body = std::move(block->body);
  return req;
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    (reason.empty() ? default_reason(status) : reason);
  out += kCrlf;
  serialize_headers(headers, body, out);
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(const std::string& wire) {
  const auto eol = wire.find(kCrlf);
  if (eol == std::string::npos) return std::nullopt;
  const std::string line = wire.substr(0, eol);
  if (line.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  const auto sp2 = line.find(' ', sp1 + 1);

  HttpResponse resp;
  const std::string code = line.substr(
      sp1 + 1, (sp2 == std::string::npos ? line.size() : sp2) - sp1 - 1);
  const auto [p, ec] =
      std::from_chars(code.data(), code.data() + code.size(), resp.status);
  if (ec != std::errc{} || p != code.data() + code.size()) return std::nullopt;
  resp.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);

  auto block = parse_headers(wire, eol + 2);
  if (!block) return std::nullopt;
  resp.headers = std::move(block->headers);
  resp.body = std::move(block->body);
  return resp;
}

}  // namespace klb::net
