#include "net/address.hpp"

#include <array>
#include <charconv>

namespace klb::net {

std::optional<IpAddr> IpAddr::parse(const std::string& s) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= s.size()) return std::nullopt;
    std::uint32_t v = 0;
    const char* begin = s.data() + pos;
    const char* end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || v > 255 || ptr == begin) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = v;
    pos = static_cast<std::size_t>(ptr - s.data());
    if (i < 3) {
      if (pos >= s.size() || s[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != s.size()) return std::nullopt;
  return IpAddr(static_cast<std::uint8_t>(octets[0]),
                static_cast<std::uint8_t>(octets[1]),
                static_cast<std::uint8_t>(octets[2]),
                static_cast<std::uint8_t>(octets[3]));
}

std::string IpAddr::str() const {
  return std::to_string((addr_ >> 24) & 0xff) + "." +
         std::to_string((addr_ >> 16) & 0xff) + "." +
         std::to_string((addr_ >> 8) & 0xff) + "." +
         std::to_string(addr_ & 0xff);
}

}  // namespace klb::net
