// TCP/IP 5-tuples and the ECMP-style hash used by hash-based L4 LBs
// (Azure LB in the paper balances purely on a 5-tuple hash; MUXes also use
// the tuple as the connection-affinity key).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/address.hpp"
#include "util/effects.hpp"

namespace klb::net {

enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

struct FiveTuple {
  IpAddr src_ip;
  IpAddr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kTcp;

  bool operator==(const FiveTuple& o) const {
    return src_ip == o.src_ip && dst_ip == o.dst_ip &&
           src_port == o.src_port && dst_port == o.dst_port &&
           proto == o.proto;
  }
  bool operator!=(const FiveTuple& o) const { return !(*this == o); }

  std::string str() const {
    return src_ip.str() + ":" + std::to_string(src_port) + "->" +
           dst_ip.str() + ":" + std::to_string(dst_port);
  }
};

/// 64-bit mix of the 5-tuple. Stable across platforms (pure arithmetic);
/// statistically uniform so an `hash % n` DIP pick emulates ECMP spreading.
/// Per-packet stage-A work: nonblocking by contract.
inline std::uint64_t hash_tuple(const FiveTuple& t) KLB_NONBLOCKING {
  auto mix = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = mix(h ^ t.src_ip.value());
  h = mix(h ^ t.dst_ip.value());
  h = mix(h ^ ((std::uint64_t{t.src_port} << 32) | t.dst_port));
  h = mix(h ^ static_cast<std::uint64_t>(t.proto));
  return h;
}

}  // namespace klb::net

template <>
struct std::hash<klb::net::FiveTuple> {
  std::size_t operator()(const klb::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(klb::net::hash_tuple(t));
  }
};
