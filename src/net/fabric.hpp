// The simulated datacenter network.
//
// Nodes (clients, MUXes, DIP servers, the KLM prober, the latency store)
// register an address and a message handler. send() delivers a Message
// after a one-way latency drawn as base + exponential jitter — the
// intra-datacenter RTT model; there is no loss in the fabric itself (the
// paper's "packet drops" happen at overloaded DIPs, which we model at the
// server's accept backlog).
//
// Messages carry the original client 5-tuple end-to-end even when a MUX
// forwards them (IP-in-IP encap in Ananta/Maglev terms): the delivery
// address is separate from the tuple, which is what enables direct server
// return (DIP responds straight to the client).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/address.hpp"
#include "net/five_tuple.hpp"
#include "sim/simulation.hpp"
#include "util/sync.hpp"

namespace klb::net {

enum class MsgType : std::uint8_t {
  kHttpRequest,
  kHttpResponse,
  kFin,        // client closes the connection (seen by MUX for LC counting)
  kPing,       // ICMP/TCP-SYN style probe: answered in kernel, load-blind
  kPingReply,
  kRespCommand,  // RESP bytes to the latency store
  kRespReply,
};

struct Message {
  MsgType type = MsgType::kHttpRequest;
  FiveTuple tuple;            // original client <-> VIP tuple
  std::uint64_t conn_id = 0;  // connection this message belongs to
  std::uint64_t req_id = 0;   // request within the connection
  std::string payload;        // HTTP or RESP wire bytes
};

class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& msg) = 0;
};

struct FabricConfig {
  util::SimTime base_latency = util::SimTime::micros(150);  // one-way
  util::SimTime jitter_mean = util::SimTime::micros(30);
};

class Network {
 public:
  Network(sim::Simulation& sim, FabricConfig cfg = {})
      : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `node` to `addr`. Re-binding replaces the previous owner (used
  /// when a failed DIP is replaced). Unbind with nullptr.
  void attach(IpAddr addr, Node* node) KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    if (node == nullptr) {
      nodes_.erase(addr);
    } else {
      nodes_[addr] = node;
    }
  }

  bool attached(IpAddr addr) const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return nodes_.count(addr) > 0;
  }

  /// Blackhole mode (benches): drop every send() before it touches the
  /// event queue or the fabric RNG — both are single-threaded — so the MUX
  /// packet path can be driven from worker threads (bench/mux_hotpath.cpp).
  /// Dropped messages are counted in messages_blackholed().
  void set_blackhole(bool on) {
    blackhole_.store(on, std::memory_order_relaxed);
  }
  std::uint64_t messages_blackholed() const {
    return blackholed_.load(std::memory_order_relaxed);
  }

  /// Observation tap: runs at every send() entry — before blackhole mode
  /// drops the message — with the destination and the message. Benches use
  /// it to assert per-packet routing invariants (e.g. "every packet of a
  /// pinned flow reaches the same DIP") at blackhole-mode rates. The tap
  /// runs on the sender's thread with no fabric lock held; it must be
  /// thread-safe itself. Install nullptr to remove. Not for concurrent
  /// install/uninstall while traffic is flowing — set it up before the
  /// drive starts (single-threaded), like set_blackhole.
  using Tap = std::function<void(IpAddr, const Message&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Deliver `msg` to the node bound to `to` after the fabric latency.
  /// Messages to unbound addresses vanish (host unreachable) — callers
  /// discover this via their own timeouts, like real probes do.
  void send(IpAddr to, Message msg) KLB_EXCLUDES(mu_) {
    if (tap_) tap_(to, msg);
    if (blackhole_.load(std::memory_order_relaxed)) {
      blackholed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    util::SimTime delay;
    {
      util::MutexLock lk(mu_);
      ++sent_;
      delay =
          cfg_.base_latency +
          util::SimTime::micros(static_cast<std::int64_t>(
              rng_.exponential(static_cast<double>(cfg_.jitter_mean.us()))));
    }
    sim_.schedule_in(delay, [this, to, m = std::move(msg)]() {
      // Resolve under the lock, deliver outside it: on_message may reenter
      // the fabric (forwarding) or take component locks, and klb.net.nodes
      // must stay a leaf-ish rank with no outgoing edges into them.
      Node* node = nullptr;
      {
        util::MutexLock lk(mu_);
        const auto it = nodes_.find(to);
        if (it == nodes_.end()) {
          ++dropped_unreachable_;
          return;
        }
        node = it->second;
      }
      node->on_message(m);
    });
  }

  sim::Simulation& sim() { return sim_; }
  std::uint64_t messages_sent() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return sent_;
  }
  std::uint64_t messages_unreachable() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return dropped_unreachable_;
  }

 private:
  sim::Simulation& sim_;
  FabricConfig cfg_;
  /// Guards the address table, the fabric RNG, and the send counters:
  /// attach/detach runs from component ctors/dtors on the control plane
  /// while MUX worker threads forward through send().
  mutable util::Mutex mu_{"klb.net.nodes"};
  util::Rng rng_ KLB_GUARDED_BY(mu_);
  std::unordered_map<IpAddr, Node*> nodes_ KLB_GUARDED_BY(mu_);
  std::atomic<bool> blackhole_{false};
  std::atomic<std::uint64_t> blackholed_{0};
  Tap tap_;  // installed before traffic, read-only during it
  std::uint64_t sent_ KLB_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_unreachable_ KLB_GUARDED_BY(mu_) = 0;
};

}  // namespace klb::net
