// The simulated datacenter network.
//
// Nodes (clients, MUXes, DIP servers, the KLM prober, the latency store)
// register an address and a message handler. send() delivers a Message
// after a one-way latency drawn as base + exponential jitter — the
// intra-datacenter RTT model; there is no loss in the fabric itself (the
// paper's "packet drops" happen at overloaded DIPs, which we model at the
// server's accept backlog).
//
// Messages carry the original client 5-tuple end-to-end even when a MUX
// forwards them (IP-in-IP encap in Ananta/Maglev terms): the delivery
// address is separate from the tuple, which is what enables direct server
// return (DIP responds straight to the client).
//
// Burst path: send_burst() ships several same-destination messages in one
// fabric hop — one latency draw, one scheduled event, one Node::on_batch
// callback at the far end (the default on_batch falls back to per-message
// on_message). The Mux uses it to forward a batch's worth of packets per
// DIP; the coalescing is by construction (the sender hands the fabric a
// same-tick burst) rather than by queue inspection.
//
// Sharded driver: when a sim::ShardedDriver is attached, sim() returns the
// *executing shard's* Simulation (thread-local), so components schedule
// onto whichever shard runs them without code changes. Sends between
// shards go through per-(src,dst) mailboxes — SPSC by construction: one
// producing shard, drained only by the main thread at window boundaries —
// and become events in the destination shard's queue. Each shard draws
// jitter from its own forked RNG, so the packet path touches no fabric
// lock at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/five_tuple.hpp"
#include "sim/sharded_driver.hpp"
#include "sim/simulation.hpp"
#include "util/effects.hpp"
#include "util/sync.hpp"

namespace klb::net {

enum class MsgType : std::uint8_t {
  kHttpRequest,
  kHttpResponse,
  kFin,        // client closes the connection (seen by MUX for LC counting)
  kPing,       // ICMP/TCP-SYN style probe: answered in kernel, load-blind
  kPingReply,
  kRespCommand,  // RESP bytes to the latency store
  kRespReply,
};

struct Message {
  MsgType type = MsgType::kHttpRequest;
  FiveTuple tuple;            // original client <-> VIP tuple
  std::uint64_t conn_id = 0;  // connection this message belongs to
  std::uint64_t req_id = 0;   // request within the connection
  std::string payload;        // HTTP or RESP wire bytes
};

class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& msg) = 0;

  /// Burst delivery: `n` same-destination messages that crossed the fabric
  /// as one hop. Default unrolls to on_message; batch-aware nodes (Mux,
  /// MuxPool) override to amortize per-packet overhead.
  virtual void on_batch(const Message* const* msgs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) on_message(*msgs[i]);
  }
};

struct FabricConfig {
  util::SimTime base_latency = util::SimTime::micros(150);  // one-way
  util::SimTime jitter_mean = util::SimTime::micros(30);
};

class Network {
 public:
  Network(sim::Simulation& sim, FabricConfig cfg = {})
      : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `node` to `addr`. Re-binding replaces the previous owner (used
  /// when a failed DIP is replaced). Unbind with nullptr.
  void attach(IpAddr addr, Node* node) KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    if (node == nullptr) {
      nodes_.erase(addr);
    } else {
      nodes_[addr] = node;
    }
  }

  bool attached(IpAddr addr) const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return nodes_.count(addr) > 0;
  }

  /// Blackhole mode (benches): drop every send() before it touches the
  /// event queue or the fabric RNG — both are single-threaded — so the MUX
  /// packet path can be driven from worker threads (bench/mux_hotpath.cpp).
  /// Dropped messages are counted in messages_blackholed().
  void set_blackhole(bool on) {
    blackhole_.store(on, std::memory_order_relaxed);
  }
  std::uint64_t messages_blackholed() const {
    return blackholed_.load(std::memory_order_relaxed);
  }

  /// Observation tap: runs at every send()/send_burst() entry — before
  /// blackhole mode drops the message — with the destination and the
  /// message. Benches use it to assert per-packet routing invariants
  /// (e.g. "every packet of a pinned flow reaches the same DIP") at
  /// blackhole-mode rates. The tap runs on the sender's thread with no
  /// fabric lock held; it must be thread-safe itself. Install nullptr to
  /// remove. Not for concurrent install/uninstall while traffic is flowing
  /// — set it up before the drive starts, like set_blackhole. The send
  /// path sees it through a single atomic load.
  using Tap = std::function<void(IpAddr, const Message&)>;
  void set_tap(Tap tap) {
    if (tap) {
      tap_storage_ = std::make_unique<Tap>(std::move(tap));
      tap_live_.store(tap_storage_.get(), std::memory_order_release);
    } else {
      tap_live_.store(nullptr, std::memory_order_release);
      tap_storage_.reset();
    }
  }

  /// Deliver `msg` to the node bound to `to` after the fabric latency.
  /// Messages to unbound addresses vanish (host unreachable) — callers
  /// discover this via their own timeouts, like real probes do. The
  /// const-ref overload copies only once the message is actually headed
  /// for the event queue — taps and blackhole mode never pay for a copy
  /// (send() is the packet path's per-forward cost in the benches).
  /// Nonallocating up to the staging split: classification (tap presence,
  /// blackhole) is lock-free; the type-erased tap runs in the
  /// "fabric.tap" escape and the copying enqueue tail (event queue or
  /// cross-shard mailbox) in "fabric.enqueue". Blackhole-mode benches —
  /// the packet-path rate measurements — never enter either.
  void send(IpAddr to, const Message& msg) KLB_NONALLOCATING;
  void send(IpAddr to, Message&& msg);

  /// Deliver `n` messages to `to` as one fabric hop: one latency draw, one
  /// event, one on_batch() at the destination. The messages are copied out
  /// of the pointed-to storage before this returns. Same effect split as
  /// send(): staging is nonallocating, tap and enqueue are the escapes.
  void send_burst(IpAddr to, const Message* const* msgs, std::size_t n)
      KLB_NONALLOCATING;

  /// The Simulation the calling thread should schedule on: the executing
  /// shard's when a ShardedDriver is attached, the root Simulation
  /// otherwise. Packet-path components use this implicitly for clocks and
  /// timers and need no changes to run sharded.
  sim::Simulation& sim() {
    sim::ShardedDriver* d = driver_;
    return d ? d->current_sim() : sim_;
  }

  /// The Simulation owned by the shard that owns `addr` — the same answer
  /// from every thread. Components that keep cancellable timers (e.g. a
  /// ClientPool's arrival/timeout events) must bind their scheduling to
  /// their own shard through this, not to the caller-relative sim().
  sim::Simulation& sim_for(IpAddr addr) {
    sim::ShardedDriver* d = driver_;
    return d ? d->shard_sim(d->owner_of(addr.value())) : sim_;
  }

  /// Attach the sharded driver: forks one jitter RNG per shard, sets up the
  /// per-(src,dst) cross-shard mailboxes, and registers the mailbox drain
  /// as the driver's window-boundary hook. Call once, before traffic, from
  /// the main thread. Pass nullptr to detach (tests).
  void set_driver(sim::ShardedDriver* driver);
  sim::ShardedDriver* driver() const { return driver_; }

  std::uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_unreachable() const {
    return dropped_unreachable_.load(std::memory_order_relaxed);
  }
  /// Messages that crossed a shard boundary through a mailbox.
  std::uint64_t messages_cross_shard() const {
    return cross_shard_.load(std::memory_order_relaxed);
  }

 private:
  /// A message (or burst) parked in a cross-shard mailbox until the next
  /// window boundary. `burst` empty means scalar (`msg` is live).
  struct Parcel {
    util::SimTime at;
    IpAddr to;
    Message msg;
    std::vector<Message> burst;
  };
  struct Mailbox {
    util::Mutex mu{"klb.sim.mailbox"};
    std::vector<Parcel> parcels KLB_GUARDED_BY(mu);
  };

  util::SimTime draw_delay(util::Rng& rng) const {
    return cfg_.base_latency +
           util::SimTime::micros(static_cast<std::int64_t>(
               rng.exponential(static_cast<double>(cfg_.jitter_mean.us()))));
  }

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return *mailboxes_[src * shard_rngs_.size() + dst];
  }

  Node* resolve(IpAddr to, std::uint64_t count) KLB_EXCLUDES(mu_);
  /// The post-tap, post-blackhole tail of send(): owns the message and
  /// routes it onto the right shard's event queue or mailbox.
  void send_owned(IpAddr to, Message msg);
  /// The post-tap, post-blackhole tail of send_burst(): copies the burst
  /// and routes it. Callers enter through the "fabric.enqueue" escape.
  void enqueue_burst(IpAddr to, const Message* const* msgs, std::size_t n);
  void deliver(IpAddr to, const Message& msg);
  void deliver_burst(IpAddr to, const std::vector<Message>& msgs);
  void drain_mailboxes();

  sim::Simulation& sim_;
  FabricConfig cfg_;
  /// Guards the address table and the root fabric RNG: attach/detach runs
  /// from component ctors/dtors on the control plane while MUX worker
  /// threads forward through send(). Send counters are relaxed atomics and
  /// never take this lock.
  mutable util::Mutex mu_{"klb.net.nodes"};
  util::Rng rng_ KLB_GUARDED_BY(mu_);
  std::unordered_map<IpAddr, Node*> nodes_ KLB_GUARDED_BY(mu_);
  std::atomic<bool> blackhole_{false};
  std::atomic<std::uint64_t> blackholed_{0};
  std::unique_ptr<Tap> tap_storage_;  // installed before traffic
  std::atomic<const Tap*> tap_live_{nullptr};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_unreachable_{0};
  std::atomic<std::uint64_t> cross_shard_{0};

  // Sharded-driver state. Set once by set_driver() before traffic; the
  // per-shard RNGs are each touched only by their shard's executor thread.
  sim::ShardedDriver* driver_ = nullptr;
  std::vector<util::Rng> shard_rngs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // src * N + dst
};

}  // namespace klb::net
