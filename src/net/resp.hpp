// RESP2 (REdis Serialization Protocol) codec.
//
// The latency store speaks RESP so the controller<->store interaction has a
// realistic wire format (the paper uses Azure Redis). Values model the five
// RESP2 types; encode/decode round-trip exactly, including nested arrays.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace klb::net {

struct RespValue;
using RespArray = std::vector<RespValue>;

struct RespValue {
  enum class Type {
    kSimpleString,  // +OK\r\n
    kError,         // -ERR msg\r\n
    kInteger,       // :42\r\n
    kBulkString,    // $3\r\nfoo\r\n
    kNull,          // $-1\r\n
    kArray,         // *2\r\n...
  };

  Type type = Type::kNull;
  std::string str;        // simple string / error / bulk string payload
  std::int64_t integer = 0;
  RespArray array;

  static RespValue simple(std::string s) {
    return {Type::kSimpleString, std::move(s), 0, {}};
  }
  static RespValue error(std::string s) {
    return {Type::kError, std::move(s), 0, {}};
  }
  static RespValue integer_of(std::int64_t v) {
    return {Type::kInteger, {}, v, {}};
  }
  static RespValue bulk(std::string s) {
    return {Type::kBulkString, std::move(s), 0, {}};
  }
  static RespValue null() { return {}; }
  static RespValue array_of(RespArray items) {
    return {Type::kArray, {}, 0, std::move(items)};
  }

  bool is_error() const { return type == Type::kError; }
  bool is_null() const { return type == Type::kNull; }

  bool operator==(const RespValue& o) const {
    return type == o.type && str == o.str && integer == o.integer &&
           array == o.array;
  }
  bool operator!=(const RespValue& o) const { return !(*this == o); }
};

/// Serialize a value to RESP2 wire bytes.
std::string resp_encode(const RespValue& v);

/// Encode a client command (array of bulk strings), e.g. {"LPUSH","k","v"}.
std::string resp_encode_command(const std::vector<std::string>& parts);

struct RespDecodeResult {
  RespValue value;
  std::size_t consumed = 0;  // bytes consumed from the input
};

/// Decode one complete value from the front of `wire`. Returns nullopt for
/// incomplete or malformed input (streaming callers retry with more bytes).
std::optional<RespDecodeResult> resp_decode(const std::string& wire);

}  // namespace klb::net
