#include "net/fabric.hpp"

#include <utility>

namespace klb::net {

void Network::send(IpAddr to, const Message& msg) KLB_NONALLOCATING {
  if (const Tap* tap = tap_live_.load(std::memory_order_acquire)) {
    // Type-erased bench hook: what it does is the installer's business.
    KLB_EFFECT_ESCAPE("fabric.tap", (*tap)(to, msg));
  }
  if (blackhole_.load(std::memory_order_relaxed)) {
    blackholed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Copy + schedule (or mailbox-park): the delivery slow lane.
  KLB_EFFECT_ESCAPE("fabric.enqueue", send_owned(to, Message(msg)));
}

void Network::send(IpAddr to, Message&& msg) {
  if (const Tap* tap = tap_live_.load(std::memory_order_acquire)) {
    (*tap)(to, msg);
  }
  if (blackhole_.load(std::memory_order_relaxed)) {
    blackholed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  send_owned(to, std::move(msg));
}

void Network::send_owned(IpAddr to, Message msg) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  sim::ShardedDriver* d = driver_;
  if (d == nullptr) {
    util::SimTime delay;
    {
      util::MutexLock lk(mu_);
      delay = draw_delay(rng_);
    }
    sim_.schedule_in(delay, [this, to, m = std::move(msg)]() {
      deliver(to, m);
    });
    return;
  }
  const std::size_t src = d->executing_shard();
  const std::size_t dst = d->owner_of(to.value());
  const util::SimTime delay = draw_delay(shard_rngs_[src]);
  sim::Simulation& src_sim = d->shard_sim(src);
  if (dst == src) {
    src_sim.schedule_in(delay, [this, to, m = std::move(msg)]() {
      deliver(to, m);
    });
    return;
  }
  cross_shard_.fetch_add(1, std::memory_order_relaxed);
  Parcel parcel{src_sim.now() + delay, to, std::move(msg), {}};
  Mailbox& box = mailbox(src, dst);
  util::MutexLock lk(box.mu);
  box.parcels.push_back(std::move(parcel));
}

void Network::send_burst(IpAddr to, const Message* const* msgs,
                         std::size_t n) KLB_NONALLOCATING {
  if (n == 0) return;
  if (n == 1) {
    send(to, *msgs[0]);
    return;
  }
  if (const Tap* tap = tap_live_.load(std::memory_order_acquire)) {
    KLB_EFFECT_ESCAPE("fabric.tap", {
      for (std::size_t i = 0; i < n; ++i) (*tap)(to, *msgs[i]);
    });
  }
  if (blackhole_.load(std::memory_order_relaxed)) {
    blackholed_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  KLB_EFFECT_ESCAPE("fabric.enqueue", enqueue_burst(to, msgs, n));
}

void Network::enqueue_burst(IpAddr to, const Message* const* msgs,
                            std::size_t n) {
  sent_.fetch_add(n, std::memory_order_relaxed);
  std::vector<Message> burst;
  burst.reserve(n);
  for (std::size_t i = 0; i < n; ++i) burst.push_back(*msgs[i]);

  sim::ShardedDriver* d = driver_;
  if (d == nullptr) {
    util::SimTime delay;
    {
      util::MutexLock lk(mu_);
      delay = draw_delay(rng_);
    }
    sim_.schedule_in(delay, [this, to, b = std::move(burst)]() {
      deliver_burst(to, b);
    });
    return;
  }
  const std::size_t src = d->executing_shard();
  const std::size_t dst = d->owner_of(to.value());
  const util::SimTime delay = draw_delay(shard_rngs_[src]);
  sim::Simulation& src_sim = d->shard_sim(src);
  if (dst == src) {
    src_sim.schedule_in(delay, [this, to, b = std::move(burst)]() {
      deliver_burst(to, b);
    });
    return;
  }
  cross_shard_.fetch_add(n, std::memory_order_relaxed);
  Parcel parcel{src_sim.now() + delay, to, Message{}, std::move(burst)};
  Mailbox& box = mailbox(src, dst);
  util::MutexLock lk(box.mu);
  box.parcels.push_back(std::move(parcel));
}

void Network::set_driver(sim::ShardedDriver* driver) {
  shard_rngs_.clear();
  mailboxes_.clear();
  driver_ = driver;
  if (driver == nullptr) return;
  const std::size_t n = driver->shard_count();
  shard_rngs_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    shard_rngs_.push_back(driver->shard_sim(k).rng().fork());
  }
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  driver->set_boundary_hook([this] { drain_mailboxes(); });
}

Node* Network::resolve(IpAddr to, std::uint64_t count) {
  // Resolve under the lock, deliver outside it: on_message may reenter the
  // fabric (forwarding) or take component locks, and klb.net.nodes must
  // stay a leaf-ish rank with no outgoing edges into them.
  util::MutexLock lk(mu_);
  const auto it = nodes_.find(to);
  if (it == nodes_.end()) {
    dropped_unreachable_.fetch_add(count, std::memory_order_relaxed);
    return nullptr;
  }
  return it->second;
}

void Network::deliver(IpAddr to, const Message& msg) {
  if (Node* node = resolve(to, 1)) node->on_message(msg);
}

void Network::deliver_burst(IpAddr to, const std::vector<Message>& msgs) {
  Node* node = resolve(to, msgs.size());
  if (node == nullptr) return;
  constexpr std::size_t kStackPtrs = 64;
  if (msgs.size() <= kStackPtrs) {
    const Message* ptrs[kStackPtrs];
    for (std::size_t i = 0; i < msgs.size(); ++i) ptrs[i] = &msgs[i];
    node->on_batch(ptrs, msgs.size());
  } else {
    std::vector<const Message*> ptrs(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) ptrs[i] = &msgs[i];
    node->on_batch(ptrs.data(), msgs.size());
  }
}

void Network::drain_mailboxes() {
  // Main thread, all shards quiescent. Fixed (dst, src, FIFO) order keeps
  // the destination queues' tie-break sequence — and therefore the whole
  // run — deterministic.
  const std::size_t n = shard_rngs_.size();
  std::vector<Parcel> taken;
  for (std::size_t dst = 0; dst < n; ++dst) {
    sim::Simulation& dst_sim = driver_->shard_sim(dst);
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      Mailbox& box = mailbox(src, dst);
      taken.clear();
      {
        util::MutexLock lk(box.mu);
        taken.swap(box.parcels);
      }
      for (Parcel& p : taken) {
        if (p.burst.empty()) {
          dst_sim.schedule_at(p.at, [this, to = p.to, m = std::move(p.msg)]() {
            deliver(to, m);
          });
        } else {
          dst_sim.schedule_at(p.at,
                              [this, to = p.to, b = std::move(p.burst)]() {
                                deliver_burst(to, b);
                              });
        }
      }
    }
  }
}

}  // namespace klb::net
