// Sharded discrete-event driver: N per-shard Simulations on host threads.
//
// The single-threaded `Simulation` stays the determinism reference and the
// N=1 case. `ShardedDriver` scales it out by running N independent event
// queues — shard 0 is an *external* Simulation (the one every component
// already holds a reference to), shards 1..N-1 are owned by the driver —
// in bounded virtual-time windows:
//
//     ┌ window k ─────────────────────────────────────────────┐
//     │ main: boundary hook (drain cross-shard mailboxes)     │
//     │ main runs shard 0  ─┐                                 │
//     │ worker runs shard 1 ├─ run_until(t + window), then    │
//     │ worker runs shard 2 ┘  barrier                        │
//     └───────────────────────────────────────────────────────┘
//
// Within a window each shard executes its own queue with no locks; clocks
// drift at most one window apart and re-align at every boundary (run_until
// advances the clock through idle time). Cross-shard communication is the
// fabric's job: `net::Network` registers a boundary hook that drains its
// per-(src,dst) mailboxes into the destination shards' queues while all
// shards are quiescent. As long as the window does not exceed the minimum
// cross-shard latency, a drained message can never land in its
// destination's past; if a caller picks a larger window, the skew shows up
// in `Simulation::late_events()` instead of silently reordering.
//
// Shard assignment is by address key: components register the shard that
// owns each address (`set_owner`), unregistered keys fall to shard 0
// (control plane), and `kAnycast` keys (the VIP of a thread-safe
// dataplane) execute on whichever shard sends to them. The owner map is
// copy-on-write: mutations happen on the main thread between windows,
// readers do a single atomic load on the send path.
//
// Threading protocol: one persistent worker thread per shard 1..N-1 parks
// on a condition variable between windows; the main thread is shard 0's
// executor. `current_shard()` is thread-local, which is how
// `net::Network::sim()` routes component scheduling to the executing
// shard without any component code changing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"
#include "util/effects.hpp"
#include "util/sync.hpp"
#include "util/time.hpp"

namespace klb::sim {

class ShardedDriver {
 public:
  /// Owner value meaning "any shard may execute this address": the
  /// destination is processed on whichever shard sent to it. Only correct
  /// for nodes whose message handling is fully thread-safe (the Mux/MuxPool
  /// packet path).
  static constexpr std::uint32_t kAnycast = 0xffffffffu;

  /// `shard0` is the externally owned Simulation that components already
  /// reference; the driver creates `shards - 1` additional Simulations
  /// seeded deterministically from shard0's RNG. `window` is the bounded
  /// virtual-time slice per barrier and must be positive; keep it at or
  /// below the minimum cross-shard message latency.
  ShardedDriver(Simulation& shard0, std::size_t shards, util::SimTime window);
  ~ShardedDriver();

  ShardedDriver(const ShardedDriver&) = delete;
  ShardedDriver& operator=(const ShardedDriver&) = delete;

  std::size_t shard_count() const { return sims_.size(); }
  Simulation& shard_sim(std::size_t shard) { return *sims_[shard]; }
  util::SimTime window() const { return window_; }

  /// Register the shard that owns (executes events for) an address key.
  /// Pass `kAnycast` for thread-safe nodes that any shard may run. Main
  /// thread only, between windows.
  void set_owner(std::uint32_t key, std::uint32_t shard);

  /// Shard that should execute a message for `key`: the registered owner,
  /// the executing shard for anycast keys, shard 0 when unregistered.
  std::size_t owner_of(std::uint32_t key) const;

  /// Shard this thread is currently executing, or -1 when the calling
  /// thread is not inside a window slice (e.g. the main thread between
  /// windows, or an unrelated bench thread). Two constant-initialized
  /// thread_local reads — on the packet path via Network::sim().
  int current_shard() const KLB_NONBLOCKING;

  /// Like current_shard() but maps "not an executor" to shard 0, which is
  /// where main-thread control-plane work belongs.
  std::size_t executing_shard() const {
    const int s = current_shard();
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }

  Simulation& current_sim() { return *sims_[executing_shard()]; }

  /// Hook invoked on the main thread at every window boundary (before each
  /// window and once after the last), while all shards are quiescent. The
  /// fabric uses it to drain cross-shard mailboxes.
  void set_boundary_hook(std::function<void()> hook) {
    boundary_hook_ = std::move(hook);
  }

  /// Advance all shards by `duration` of virtual time, window by window.
  /// Returns the total number of events executed across shards. With one
  /// shard this is exactly `Simulation::run_for`.
  std::uint64_t run_for(util::SimTime duration);

  /// Virtual time (all shard clocks agree between windows).
  util::SimTime now() const { return sims_[0]->now(); }

  std::uint64_t windows_run() const { return windows_run_; }

  /// Sum of per-shard late-event counters (see Simulation::late_events).
  std::uint64_t late_events() const;

  /// Sum of per-shard pending events. Between windows only.
  std::size_t pending_events() const;

 private:
  using OwnerMap = std::unordered_map<std::uint32_t, std::uint32_t>;

  void worker_main(std::size_t shard);

  std::vector<Simulation*> sims_;  // [0] external, rest point into owned_
  std::vector<std::unique_ptr<Simulation>> owned_;
  util::SimTime window_;
  std::function<void()> boundary_hook_;

  // Copy-on-write owner map: written under mu_ (main thread, between
  // windows), read lock-free on the send path. History retains old
  // snapshots so a racing reader can never see freed memory.
  std::atomic<const OwnerMap*> owners_live_{nullptr};
  std::vector<std::unique_ptr<OwnerMap>> owners_history_ KLB_GUARDED_BY(mu_);

  // Window handshake between the main thread and the shard workers.
  mutable util::Mutex mu_{"klb.sim.shard"};
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  std::uint64_t window_gen_ KLB_GUARDED_BY(mu_) = 0;
  util::SimTime window_end_ KLB_GUARDED_BY(mu_) = util::SimTime::zero();
  std::size_t workers_done_ KLB_GUARDED_BY(mu_) = 0;
  bool shutdown_ KLB_GUARDED_BY(mu_) = false;

  // Per-shard cumulative executed-event counts. Each slot is written only
  // by that shard's executor during a window; the barrier orders the main
  // thread's reads.
  std::vector<std::uint64_t> executed_;
  std::uint64_t windows_run_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace klb::sim
