// Cancellable priority queue of timestamped events.
//
// Events fire in (time, sequence) order so that same-timestamp events run
// in schedule order — required for deterministic replays. Cancellation is
// lazy: a cancelled entry stays in the heap and is skipped on pop, which
// keeps cancel() O(1) (timers are cancelled far more often than they fire
// in connection-heavy simulations).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace klb::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(util::SimTime at, Callback fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  /// Cancel a pending event. Safe to call with an already-fired id.
  void cancel(EventId id) { callbacks_.erase(id); }

  bool empty() const { return callbacks_.empty(); }
  std::size_t size() const { return callbacks_.size(); }

  /// Time of the next live event; SimTime::max() when empty.
  util::SimTime next_time() {
    skip_dead();
    return heap_.empty() ? util::SimTime::max() : heap_.top().at;
  }

  /// Pop and run the next live event. The caller must advance its clock to
  /// next_time() BEFORE calling this, so the callback observes the event's
  /// own timestamp. Precondition: !empty().
  void pop_and_run() {
    skip_dead();
    const Entry e = heap_.top();
    heap_.pop();
    auto node = callbacks_.extract(e.id);
    node.mapped()();
  }

 private:
  struct Entry {
    util::SimTime at;
    EventId id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  void skip_dead() {
    while (!heap_.empty() && !callbacks_.count(heap_.top().id)) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
};

}  // namespace klb::sim
