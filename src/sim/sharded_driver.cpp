#include "sim/sharded_driver.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace klb::sim {

namespace {

// Which driver/shard this thread is currently executing a window for.
// Compared against `this` so multiple drivers in one process (tests) do
// not confuse each other's threads.
thread_local const ShardedDriver* tls_driver = nullptr;
thread_local int tls_shard = -1;

struct TlsExecutorScope {
  TlsExecutorScope(const ShardedDriver* d, int shard) {
    tls_driver = d;
    tls_shard = shard;
  }
  ~TlsExecutorScope() {
    tls_driver = nullptr;
    tls_shard = -1;
  }
};

}  // namespace

ShardedDriver::ShardedDriver(Simulation& shard0, std::size_t shards,
                             util::SimTime window)
    : window_(window) {
  assert(shards >= 1 && "ShardedDriver needs at least one shard");
  assert(window.us() > 0 && "window must be positive");
  if (shards == 0) shards = 1;
  sims_.reserve(shards);
  sims_.push_back(&shard0);
  for (std::size_t k = 1; k < shards; ++k) {
    owned_.push_back(std::make_unique<Simulation>(shard0.rng().next()));
    sims_.push_back(owned_.back().get());
  }
  executed_.assign(shards, 0);
  {
    util::MutexLock lk(mu_);
    owners_history_.push_back(std::make_unique<OwnerMap>());
    owners_live_.store(owners_history_.back().get(), std::memory_order_release);
  }
  workers_.reserve(shards > 0 ? shards - 1 : 0);
  for (std::size_t k = 1; k < shards; ++k) {
    workers_.emplace_back([this, k] { worker_main(k); });
  }
}

ShardedDriver::~ShardedDriver() {
  {
    util::MutexLock lk(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (auto& t : workers_) t.join();
}

void ShardedDriver::set_owner(std::uint32_t key, std::uint32_t shard) {
  assert(shard == kAnycast || shard < sims_.size());
  util::MutexLock lk(mu_);
  auto next = std::make_unique<OwnerMap>(*owners_history_.back());
  (*next)[key] = shard;
  owners_history_.push_back(std::move(next));
  owners_live_.store(owners_history_.back().get(), std::memory_order_release);
}

std::size_t ShardedDriver::owner_of(std::uint32_t key) const {
  const OwnerMap* map = owners_live_.load(std::memory_order_acquire);
  const auto it = map->find(key);
  if (it == map->end()) return 0;
  if (it->second == kAnycast) return executing_shard();
  return it->second;
}

int ShardedDriver::current_shard() const KLB_NONBLOCKING {
  return tls_driver == this ? tls_shard : -1;
}

std::uint64_t ShardedDriver::run_for(util::SimTime duration) {
  if (sims_.size() == 1) {
    // Degenerate case: exactly the single-threaded Simulation semantics.
    return sims_[0]->run_for(duration);
  }
  const std::uint64_t before =
      std::accumulate(executed_.begin(), executed_.end(), std::uint64_t{0});
  const util::SimTime goal = sims_[0]->now() + duration;
  util::SimTime t = sims_[0]->now();
  while (t < goal) {
    const util::SimTime end = std::min(goal, t + window_);
    // Drain cross-shard traffic produced by the previous window while every
    // shard is quiescent.
    if (boundary_hook_) boundary_hook_();
    {
      util::MutexLock lk(mu_);
      ++window_gen_;
      window_end_ = end;
      workers_done_ = 0;
      work_cv_.notify_all();
    }
    {
      TlsExecutorScope scope(this, 0);
      executed_[0] += sims_[0]->run_until(end);
    }
    {
      util::MutexLock lk(mu_);
      while (workers_done_ < workers_.size()) done_cv_.wait(mu_);
    }
    ++windows_run_;
    t = end;
  }
  // Final drain: cross-shard sends from the last window become pending
  // events so a subsequent run_for (or an inspection of queues) sees them.
  if (boundary_hook_) boundary_hook_();
  const std::uint64_t after =
      std::accumulate(executed_.begin(), executed_.end(), std::uint64_t{0});
  return after - before;
}

std::uint64_t ShardedDriver::late_events() const {
  std::uint64_t total = 0;
  for (const auto* s : sims_) total += s->late_events();
  return total;
}

std::size_t ShardedDriver::pending_events() const {
  std::size_t total = 0;
  for (const auto* s : sims_) total += s->pending_events();
  return total;
}

void ShardedDriver::worker_main(std::size_t shard) {
  TlsExecutorScope scope(this, static_cast<int>(shard));
  std::uint64_t seen = 0;
  for (;;) {
    util::SimTime end = util::SimTime::zero();
    {
      util::MutexLock lk(mu_);
      while (!shutdown_ && window_gen_ == seen) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen = window_gen_;
      end = window_end_;
    }
    executed_[shard] += sims_[shard]->run_until(end);
    {
      util::MutexLock lk(mu_);
      ++workers_done_;
      done_cv_.notify_all();
    }
  }
}

}  // namespace klb::sim
