// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock, the event queue, and the root RNG.
// Components hold a reference to it and schedule callbacks. The kernel is
// single-threaded; determinism comes from the (time, sequence) event order
// and from all randomness being forked off the root RNG at construction
// time (never during the run, so component construction order is the only
// thing that matters).
#pragma once

#include <functional>

#include "sim/event_queue.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace klb::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  util::SimTime now() const { return now_; }
  util::Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventId schedule_in(util::SimTime delay, EventQueue::Callback fn) {
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time (must be >= now()).
  /// A past-due `at` is clamped to now(): the event still runs, but its
  /// intended ordering against already-executed events is lost. That is
  /// normally a bug in the caller (with a sharded driver: a cross-shard
  /// send that outran the virtual-time window), so the clamp is counted
  /// and logged instead of silent.
  EventId schedule_at(util::SimTime at, EventQueue::Callback fn) {
    if (at < now_) {
      ++late_events_;
      util::log_debug("sim") << "late event clamped to now(): scheduled at "
                             << at.us() << "us, now " << now_.us() << "us ("
                             << (now_ - at).us() << "us late, " << late_events_
                             << " total)";
      at = now_;
    }
    return queue_.schedule(at, std::move(fn));
  }

  /// Number of schedule_at() calls whose target time was already in the
  /// past and got clamped to now(). Zero in a healthy run.
  std::uint64_t late_events() const { return late_events_; }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the event queue drains or the clock passes `until`.
  /// Returns the number of events executed. The clock is advanced to each
  /// event's timestamp before its callback runs, and through idle time to
  /// `until` at the end (unless `until` is the drain-everything sentinel).
  std::uint64_t run_until(util::SimTime until) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= until) {
      now_ = queue_.next_time();
      queue_.pop_and_run();
      ++executed;
    }
    if (now_ < until && until < util::SimTime::max()) now_ = until;
    return executed;
  }

  /// Run for `duration` of additional virtual time.
  std::uint64_t run_for(util::SimTime duration) {
    return run_until(now_ + duration);
  }

  /// Drain every pending event regardless of time (mainly for tests).
  std::uint64_t run_all() { return run_until(util::SimTime::max()); }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  util::SimTime now_ = util::SimTime::zero();
  EventQueue queue_;
  util::Rng rng_;
  std::uint64_t late_events_ = 0;
};

/// Repeating timer bound to a Simulation. Starts on start(), stops on
/// stop() or destruction. The callback may call stop() on its own timer.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, util::SimTime period,
                std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// First firing after `initial_delay` (defaults to one period).
  void start(util::SimTime initial_delay = util::SimTime::micros(-1)) {
    stop();
    running_ = true;
    const auto delay =
        initial_delay.us() < 0 ? period_ : initial_delay;
    pending_ = sim_.schedule_in(delay, [this] { fire(); });
  }

  void stop() {
    if (pending_ != kInvalidEvent) sim_.cancel(pending_);
    pending_ = kInvalidEvent;
    running_ = false;
  }

  bool running() const { return running_; }

  void set_period(util::SimTime period) { period_ = period; }
  util::SimTime period() const { return period_; }

 private:
  void fire() {
    pending_ = kInvalidEvent;
    fn_();
    if (running_) pending_ = sim_.schedule_in(period_, [this] { fire(); });
  }

  Simulation& sim_;
  util::SimTime period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace klb::sim
