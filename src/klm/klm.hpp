// KLM — KnapsackLB Latency Measurement (§3.2, §5).
//
// One KLM runs per VNET. Every `period` (5 s) it probes every DIP in its
// list *directly* (bypassing the MUXes, so MUX queueing never pollutes the
// signal) with `probes_per_round` (100) application-level HTTP requests to
// the admin-provided URL, spread across the round to avoid a load spike.
// The round's average latency plus error/timeout counts are appended to
// the latency store over the RESP wire. Pings deliberately are NOT used
// for load measurement (Fig. 5) — a PingProber exists solely to reproduce
// that figure.
//
// KLM is agent-less by construction: it only issues requests a regular
// client could issue.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/http.hpp"
#include "sim/simulation.hpp"
#include "store/latency_store.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace klb::klm {

struct KlmConfig {
  util::SimTime period = util::SimTime::seconds(5);
  int probes_per_round = 100;
  /// The round's probes are spread over this fraction of the period.
  double spread_fraction = 0.9;
  util::SimTime probe_timeout = util::SimTime::seconds(2);
  std::string url = "/work";
};

class Klm : public net::Node {
 public:
  Klm(net::Network& net, net::IpAddr addr, net::IpAddr vip,
      std::vector<net::IpAddr> dips, net::IpAddr store_addr,
      KlmConfig cfg = {});
  ~Klm() override;

  /// Begin periodic measurement (first round starts immediately).
  void start();
  void stop();

  /// Probe a single DIP once, out of band (used by the drain estimator and
  /// the explorer's l0 measurement). The result is appended to the store
  /// like a regular round, with `probes` = n. n <= 0 is rejected loudly: a
  /// zero-probe round has no resolution event to ever finish it, so
  /// admitting one would leak it in the in-flight table forever.
  void probe_once(net::IpAddr dip, int n) KLB_EXCLUDES(mu_);

  const KlmConfig& config() const { return cfg_; }
  std::uint64_t rounds_completed() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return rounds_;
  }

  /// Start measuring `dip` from the next periodic round on.
  void add_dip(net::IpAddr dip) KLB_EXCLUDES(mu_);
  /// Stop measuring `dip` now: in-flight rounds targeting it are dropped
  /// (their already-scheduled probe callbacks become no-ops, their pending
  /// timeouts are cancelled), so a removed DIP can never write another
  /// sample — stale timeout rounds for a DIP the controller no longer owns
  /// would otherwise read as a failure of a pool member.
  void remove_dip(net::IpAddr dip) KLB_EXCLUDES(mu_);

  // --- observability ---------------------------------------------------------
  /// Rounds currently awaiting probe resolutions.
  std::size_t rounds_in_flight() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return rounds_in_flight_.size();
  }
  /// Probe sends/timeouts still outstanding.
  std::size_t probes_outstanding() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return outstanding_.size();
  }
  /// Rounds discarded by remove_dip before completion.
  std::uint64_t rounds_dropped() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return rounds_dropped_;
  }
  /// probe_once calls rejected for a non-positive probe count.
  std::uint64_t rejected_probe_requests() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return rejected_probes_;
  }

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct Round {
    net::IpAddr dip;
    util::Welford latency_ms;
    std::uint32_t resolved = 0;  // responses + timeouts so far
    std::uint32_t errors = 0;
    std::uint32_t timeouts = 0;
    std::uint32_t want = 0;      // probes in the round
  };

  void begin_rounds() KLB_EXCLUDES(mu_);
  void send_probe(std::uint64_t round_key, std::uint32_t seq)
      KLB_EXCLUDES(mu_);
  /// A probe's timeout fired: count it against its round (scheduled by
  /// send_probe; locks internally).
  void resolve_timeout(std::uint64_t probe_id) KLB_EXCLUDES(mu_);
  void finish_if_done(std::uint64_t round_key) KLB_REQUIRES(mu_);
  void flush_round(Round& round) KLB_REQUIRES(mu_);

  net::Network& net_;
  net::IpAddr addr_;
  net::IpAddr vip_;
  net::IpAddr store_addr_;
  KlmConfig cfg_;
  util::Rng rng_;

  sim::PeriodicTimer timer_;
  /// Guards the measurement state below. Probe sends/flushes go out to the
  /// fabric under it (klb.klm.rounds -> klb.net.nodes is the legal order).
  mutable util::Mutex mu_{"klb.klm.rounds"};
  std::vector<net::IpAddr> dips_ KLB_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Round> rounds_in_flight_
      KLB_GUARDED_BY(mu_);
  // (round_key << 20 | seq) -> sent_at, timeout event
  struct Outstanding {
    std::uint64_t round_key;
    util::SimTime sent_at;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };
  std::unordered_map<std::uint64_t, Outstanding> outstanding_
      KLB_GUARDED_BY(mu_);
  std::uint64_t next_round_key_ KLB_GUARDED_BY(mu_) = 1;
  std::uint64_t rounds_ KLB_GUARDED_BY(mu_) = 0;
  std::uint64_t rounds_dropped_ KLB_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_probes_ KLB_GUARDED_BY(mu_) = 0;
};

/// Ping (ICMP / TCP SYN-ACK style) prober: exists to reproduce Fig. 5's
/// demonstration that pings do not reflect application load.
class PingProber : public net::Node {
 public:
  PingProber(net::Network& net, net::IpAddr addr);
  ~PingProber() override;

  /// Send `n` pings to `dip`, spread by `gap`; results accumulate in
  /// rtt_ms() until reset().
  void ping(net::IpAddr dip, int n,
            util::SimTime gap = util::SimTime::millis(10));

  const util::Welford& rtt_ms() const { return rtt_; }
  std::uint64_t lost() const { return lost_; }
  void reset();

  void on_message(const net::Message& msg) override;

 private:
  net::Network& net_;
  net::IpAddr addr_;
  std::unordered_map<std::uint64_t, util::SimTime> in_flight_;
  std::uint64_t next_id_ = 1;
  util::Welford rtt_;
  std::uint64_t lost_ = 0;
};

}  // namespace klb::klm
