#include "klm/klm.hpp"

#include <algorithm>

#include "net/resp.hpp"
#include "util/logging.hpp"

namespace klb::klm {

namespace {
constexpr std::uint64_t kSeqBits = 20;  // probe seq within a round key
}

Klm::Klm(net::Network& net, net::IpAddr addr, net::IpAddr vip,
         std::vector<net::IpAddr> dips, net::IpAddr store_addr, KlmConfig cfg)
    : net_(net), addr_(addr), vip_(vip), store_addr_(store_addr), cfg_(cfg),
      rng_(net.sim().rng().fork()),
      timer_(net.sim(), cfg.period, [this] { begin_rounds(); }),
      dips_(std::move(dips)) {
  net_.attach(addr_, this);
}

Klm::~Klm() { net_.attach(addr_, nullptr); }

void Klm::start() {
  timer_.start(util::SimTime::zero());  // first round right away
}

void Klm::stop() { timer_.stop(); }

void Klm::add_dip(net::IpAddr dip) {
  util::MutexLock lk(mu_);
  if (std::find(dips_.begin(), dips_.end(), dip) == dips_.end())
    dips_.push_back(dip);
}

void Klm::remove_dip(net::IpAddr dip) {
  util::MutexLock lk(mu_);
  dips_.erase(std::remove(dips_.begin(), dips_.end(), dip), dips_.end());

  // Drop every in-flight round targeting the removed DIP. Its scheduled
  // send_probe callbacks look the round up by key and become no-ops; the
  // probes already on the wire (or awaiting their timeout) are forgotten
  // below, so neither a late reply nor a timeout can resurrect the round
  // and flush a sample for a DIP nobody owns anymore.
  bool dropped_any = false;
  for (auto it = rounds_in_flight_.begin(); it != rounds_in_flight_.end();) {
    if (it->second.dip == dip) {
      ++rounds_dropped_;
      dropped_any = true;
      it = rounds_in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  if (!dropped_any) return;
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (rounds_in_flight_.count(it->second.round_key) == 0) {
      net_.sim().cancel(it->second.timeout_event);
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

void Klm::begin_rounds() {
  util::MutexLock lk(mu_);
  for (const auto dip : dips_) {
    const std::uint64_t key = next_round_key_++;
    Round r;
    r.dip = dip;
    r.want = static_cast<std::uint32_t>(cfg_.probes_per_round);
    rounds_in_flight_[key] = r;

    // Spread probes across a fraction of the period.
    const double window_s = cfg_.period.sec() * cfg_.spread_fraction;
    const double gap_s =
        window_s / std::max(1, cfg_.probes_per_round);
    for (int i = 0; i < cfg_.probes_per_round; ++i) {
      const auto at = util::SimTime::seconds(gap_s * i);
      net_.sim().schedule_in(at, [this, key, i] {
        send_probe(key, static_cast<std::uint32_t>(i));
      });
    }
  }
}

void Klm::probe_once(net::IpAddr dip, int n) {
  util::MutexLock lk(mu_);
  if (n <= 0) {
    // A want==0 round has no resolution event that could ever finish it:
    // admitting one would leak it in rounds_in_flight_ forever. Reject.
    ++rejected_probes_;
    util::log_warn("klb-klm") << "probe_once(" << dip.str() << ", " << n
                              << "): non-positive probe count rejected";
    return;
  }
  const std::uint64_t key = next_round_key_++;
  Round r;
  r.dip = dip;
  r.want = static_cast<std::uint32_t>(n);
  rounds_in_flight_[key] = r;
  for (int i = 0; i < n; ++i) {
    const auto at = util::SimTime::millis(5.0 * i);
    net_.sim().schedule_in(at, [this, key, i] {
      send_probe(key, static_cast<std::uint32_t>(i));
    });
  }
}

void Klm::send_probe(std::uint64_t round_key, std::uint32_t seq) {
  util::MutexLock lk(mu_);
  const auto rit = rounds_in_flight_.find(round_key);
  if (rit == rounds_in_flight_.end()) return;
  Round& round = rit->second;

  net::HttpRequest http;
  http.method = "GET";
  http.target = cfg_.url;
  http.headers["Host"] = round.dip.str();
  http.headers["User-Agent"] = "klm-probe";

  const std::uint64_t probe_id = (round_key << kSeqBits) | seq;

  net::Message msg;
  msg.type = net::MsgType::kHttpRequest;
  msg.tuple.src_ip = addr_;
  msg.tuple.dst_ip = round.dip;  // direct to the DIP: MUX bypassed
  msg.tuple.src_port = static_cast<std::uint16_t>(20'000 + (probe_id % 40'000));
  msg.tuple.dst_port = 80;
  msg.conn_id = 0;  // one-shot probe connections
  msg.req_id = probe_id;
  msg.payload = http.serialize();

  Outstanding out;
  out.round_key = round_key;
  out.sent_at = net_.sim().now();
  out.timeout_event = net_.sim().schedule_in(
      cfg_.probe_timeout, [this, probe_id] { resolve_timeout(probe_id); });
  outstanding_[probe_id] = out;
  net_.send(round.dip, msg);
}

void Klm::resolve_timeout(std::uint64_t probe_id) {
  util::MutexLock lk(mu_);
  const auto it = outstanding_.find(probe_id);
  if (it == outstanding_.end()) return;
  const auto key = it->second.round_key;
  outstanding_.erase(it);
  auto rit = rounds_in_flight_.find(key);
  if (rit == rounds_in_flight_.end()) return;
  ++rit->second.timeouts;
  ++rit->second.resolved;
  finish_if_done(key);
}

void Klm::on_message(const net::Message& msg) {
  if (msg.type != net::MsgType::kHttpResponse) return;
  util::MutexLock lk(mu_);
  const auto it = outstanding_.find(msg.req_id);
  if (it == outstanding_.end()) return;  // late reply after timeout
  const auto key = it->second.round_key;
  const auto sent_at = it->second.sent_at;
  net_.sim().cancel(it->second.timeout_event);
  outstanding_.erase(it);

  const auto rit = rounds_in_flight_.find(key);
  if (rit == rounds_in_flight_.end()) return;
  Round& round = rit->second;
  ++round.resolved;

  const auto http = net::HttpResponse::parse(msg.payload);
  if (http && http->ok()) {
    round.latency_ms.add((net_.sim().now() - sent_at).ms());
  } else {
    ++round.errors;
  }
  finish_if_done(key);
}

void Klm::finish_if_done(std::uint64_t round_key) {
  const auto it = rounds_in_flight_.find(round_key);
  if (it == rounds_in_flight_.end()) return;
  Round& round = it->second;
  if (round.resolved < round.want) return;
  flush_round(round);
  rounds_in_flight_.erase(it);
  ++rounds_;
}

void Klm::flush_round(Round& round) {
  store::LatencySample sample;
  sample.dip = round.dip;
  sample.avg_latency_ms = round.latency_ms.mean();
  sample.probes = round.want;
  sample.errors = round.errors;
  sample.timeouts = round.timeouts;
  sample.at = net_.sim().now();

  // Write over the wire through the KvServer (LPUSH + LTRIM), mirroring
  // what LatencyStore::record does locally.
  const auto key = store::LatencyStore::key_for(vip_, round.dip);
  net::Message push;
  push.type = net::MsgType::kRespCommand;
  push.tuple.src_ip = addr_;
  push.tuple.dst_ip = store_addr_;
  push.payload = net::resp_encode_command({"LPUSH", key, sample.serialize()});
  net_.send(store_addr_, push);

  net::Message trim;
  trim.type = net::MsgType::kRespCommand;
  trim.tuple.src_ip = addr_;
  trim.tuple.dst_ip = store_addr_;
  trim.payload = net::resp_encode_command({"LTRIM", key, "0", "63"});
  net_.send(store_addr_, trim);
}

PingProber::PingProber(net::Network& net, net::IpAddr addr)
    : net_(net), addr_(addr) {
  net_.attach(addr_, this);
}

PingProber::~PingProber() { net_.attach(addr_, nullptr); }

void PingProber::ping(net::IpAddr dip, int n, util::SimTime gap) {
  for (int i = 0; i < n; ++i) {
    net_.sim().schedule_in(gap * static_cast<double>(i), [this, dip] {
      const auto id = next_id_++;
      in_flight_[id] = net_.sim().now();
      net::Message msg;
      msg.type = net::MsgType::kPing;
      msg.tuple.src_ip = addr_;
      msg.tuple.dst_ip = dip;
      msg.req_id = id;
      net_.send(dip, msg);
      // Pings that never return count as lost after 2 s.
      net_.sim().schedule_in(util::SimTime::seconds(2), [this, id] {
        if (in_flight_.erase(id) > 0) ++lost_;
      });
    });
  }
}

void PingProber::reset() {
  rtt_.reset();
  lost_ = 0;
}

void PingProber::on_message(const net::Message& msg) {
  if (msg.type != net::MsgType::kPingReply) return;
  const auto it = in_flight_.find(msg.req_id);
  if (it == in_flight_.end()) return;
  rtt_.add((net_.sim().now() - it->second).ms());
  in_flight_.erase(it);
}

}  // namespace klb::klm
